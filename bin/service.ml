(* Lock-service throughput harness: drive registry locks through millions
   of simulated passages under open-loop arrival processes and emit
   BENCH_service.json with throughput, latency quantiles, RMR histograms
   and allocation rates.

     dune exec bin/service.exe --                         # full run, >= 1M passages
     dune exec bin/service.exe -- --passages 60000        # CI smoke
     dune exec bin/service.exe -- --locks wr --arrivals poisson --statsd out.statsd

   Unlike the closed-loop workloads in Rme.Workload (each client re-requests
   the moment its previous passage completes), the service harness is
   open-loop: every client has a precomputed schedule of arrival steps and
   each request's latency is charged from its *scheduled* arrival, so
   convoys and hand-off stalls show up as queueing delay instead of
   silently throttling the offered load.  This is the standard
   coordinated-omission-free way to measure a lock service.

   The harness is also the consumer of the engine's zero-instrumentation
   fast path: measured runs execute with ~mode:`Fast (crash-free,
   abort-free, dropping event sink), and a gate run compares that against
   ~mode:`Full with full event recording to hold the fast path to its
   contract (>= 2x passages/sec, <= 0.5x minor words per passage). *)

open Cmdliner
open Rme_sim
module Metrics = Rme_check.Metrics
module Hist = Metrics.Hist

type arrival = Poisson | Bursty

let arrival_of_string = function
  | "poisson" -> Ok Poisson
  | "bursty" -> Ok Bursty
  | s -> Error (Printf.sprintf "unknown arrival process %S (poisson|bursty)" s)

let arrival_name = function Poisson -> "poisson" | Bursty -> "bursty"

(* One measured engine run: a shard of a (lock x arrival) configuration. *)
type shard_out = {
  so_passages : int;  (** completed passages, warmup included *)
  so_measured : int;  (** passages recorded into the histograms *)
  so_steps : int;
  so_wall : float;
  so_minor_words : float;  (** minor words allocated across the run *)
  so_lat : Hist.t;  (** sojourn latency: completion step - scheduled arrival *)
  so_rmr : Hist.t;  (** RMRs per passage *)
  so_stall : string option;
}

(* Per-client arrival schedules, in absolute engine steps.  Poisson draws
   exponential inter-arrival gaps of mean [gap]; bursty fires [burst]
   back-to-back arrivals separated by exponential lulls of mean
   [burst * gap], so both processes offer the same average load. *)
let arrivals ~rng ~arrival ~gap ~burst ~requests =
  let exp_gap mean =
    let u = Random.State.float rng 1.0 in
    let g = int_of_float (-.mean *. log (1.0 -. u)) in
    if g < 1 then 1 else g
  in
  let dues = Array.make requests 0 in
  let t = ref (1 + Random.State.int rng (max 1 gap)) in
  for i = 0 to requests - 1 do
    (match arrival with
    | Poisson -> t := !t + exp_gap (float_of_int gap)
    | Bursty -> if i mod burst = 0 then t := !t + exp_gap (float_of_int (burst * gap)) else incr t);
    dues.(i) <- !t
  done;
  dues

(* The open-loop client body.  The pacing loop polls the global step
   counter (a free scheduling point) until the scheduled arrival; a
   request whose due step is already past starts immediately — backlog
   drains at full speed, it is never absorbed into the offered load. *)
let client_body ~dues ~warmup ~cs_yields ~lat (lock : Harness.lock) ~pid =
  let dues = dues.(pid) in
  let requests = Array.length dues in
  for i = 0 to requests - 1 do
    let due = Array.unsafe_get dues i in
    while Api.step () < due do
      Api.yield ()
    done;
    Api.note (Event.Seg Event.Req_begin);
    lock.Harness.acquire ~pid;
    Api.note (Event.Seg Event.Cs_begin);
    for _ = 1 to cs_yields do
      Api.yield ()
    done;
    Api.note (Event.Seg Event.Cs_end);
    lock.Harness.release ~pid;
    Api.note (Event.Seg Event.Req_done);
    if i >= warmup then Hist.add lat (Api.step () - due)
  done

let run_shard ~mode ~record ~trace_ops ~spec ~arrival ~clients ~requests ~warmup ~gap ~burst
    ~cs_yields ~seed =
  let rng = Random.State.make [| seed; 0x5e21; 0xca11 |] in
  let dues =
    Array.init clients (fun _ -> arrivals ~rng ~arrival ~gap ~burst ~requests)
  in
  let last_due = Array.fold_left (fun acc d -> max acc d.(requests - 1)) 0 dues in
  let max_steps = last_due + (clients * requests * 300) + 1_000_000 in
  let lat = Hist.create () in
  let rmr = Hist.create () in
  let minor0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let res =
    Engine.run ~mode ~record ~trace_ops ~max_steps ~n:clients ~model:Memory.CC
      ~sched:(Sched.random ~seed:(seed + 7919))
      ~crash:Crash.none ~setup:spec.Rme.Spec.make
      ~body:(client_body ~dues ~warmup ~cs_yields ~lat)
      ()
  in
  let wall = Unix.gettimeofday () -. t0 in
  let minor_words = Gc.minor_words () -. minor0 in
  let passages = ref 0 in
  Array.iter
    (fun (p : Engine.proc_stats) ->
      List.iteri
        (fun i (pa : Engine.passage) ->
          if pa.Engine.completed then begin
            incr passages;
            if i >= warmup then Hist.add rmr pa.Engine.rmr
          end)
        p.Engine.passages)
    res.Engine.procs;
  let stall =
    match res.Engine.stall with
    | Some s -> Some (Fmt.str "%a" Engine.pp_stall s)
    | None ->
        if res.Engine.deadlocked then Some "deadlocked (undiagnosed)"
        else if res.Engine.timed_out then Some "timed out (undiagnosed)"
        else None
  in
  {
    so_passages = !passages;
    so_measured = Hist.count lat;
    so_steps = res.Engine.steps;
    so_wall = wall;
    so_minor_words = minor_words;
    so_lat = lat;
    so_rmr = rmr;
    so_stall = stall;
  }

(* Merged view of one (lock x arrival) configuration. *)
type config_out = {
  co_lock : string;
  co_arrival : arrival;
  co_passages : int;
  co_measured : int;
  co_steps : int;
  co_wall : float;  (** summed across shards: per-domain serial seconds *)
  co_minor_words : float;
  co_lat : Hist.t;
  co_rmr : Hist.t;
  co_stalls : string list;
}

let merge_config ~lock ~arrival outs =
  let lat = Hist.create () and rmr = Hist.create () in
  let acc =
    List.fold_left
      (fun (p, m, s, w, mw, stalls) o ->
        Hist.merge_into ~into:lat o.so_lat;
        Hist.merge_into ~into:rmr o.so_rmr;
        ( p + o.so_passages,
          m + o.so_measured,
          s + o.so_steps,
          w +. o.so_wall,
          mw +. o.so_minor_words,
          match o.so_stall with Some msg -> msg :: stalls | None -> stalls ))
      (0, 0, 0, 0.0, 0.0, []) outs
  in
  let p, m, s, w, mw, stalls = acc in
  {
    co_lock = lock;
    co_arrival = arrival;
    co_passages = p;
    co_measured = m;
    co_steps = s;
    co_wall = w;
    co_minor_words = mw;
    co_lat = lat;
    co_rmr = rmr;
    co_stalls = List.rev stalls;
  }

(* --- fast-path gate ------------------------------------------------- *)

(* Same workload twice on the calling domain: the zero-instrumentation
   fast path versus the fully instrumented engine (every bookkeeping
   layer forced on: full event recording plus per-instruction op traces).
   The gate runs closed-loop (gap 1: every due step is already past, so
   clients drain backlog at full speed) — under open-loop saturation the
   pacing polls dominate per-passage cost identically in both modes and
   would dilute the ratio the gate is holding the fast path to.
   The contract of docs/PERFORMANCE.md, held empirically on every run. *)
type gate_out = {
  g_fast_tp : float;
  g_full_tp : float;
  g_speedup : float;
  g_fast_alloc : float;  (** minor words per passage *)
  g_full_alloc : float;
  g_alloc_ratio : float;
  g_pass : bool;
}

let run_gate ~spec ~clients ~requests ~burst ~cs_yields ~seed =
  let one ~mode ~record ~trace_ops =
    let o =
      run_shard ~mode ~record ~trace_ops ~spec ~arrival:Poisson ~clients ~requests ~warmup:0
        ~gap:1 ~burst ~cs_yields ~seed
    in
    let tp = float_of_int o.so_passages /. Float.max 1e-9 o.so_wall in
    let alloc = o.so_minor_words /. float_of_int (max 1 o.so_passages) in
    (tp, alloc)
  in
  (* Warm both paths once so neither measurement pays first-run costs
     (code paths, memory growth) the other skipped. *)
  let warm_req = max 16 (requests / 10) in
  ignore
    (run_shard ~mode:`Fast ~record:false ~trace_ops:false ~spec ~arrival:Poisson ~clients
       ~requests:warm_req ~warmup:0 ~gap:1 ~burst ~cs_yields ~seed);
  ignore
    (run_shard ~mode:`Full ~record:true ~trace_ops:true ~spec ~arrival:Poisson ~clients
       ~requests:warm_req ~warmup:0 ~gap:1 ~burst ~cs_yields ~seed);
  let full_tp, full_alloc = one ~mode:`Full ~record:true ~trace_ops:true in
  let fast_tp, fast_alloc = one ~mode:`Fast ~record:false ~trace_ops:false in
  let speedup = fast_tp /. Float.max 1e-9 full_tp in
  let alloc_ratio = fast_alloc /. Float.max 1e-9 full_alloc in
  {
    g_fast_tp = fast_tp;
    g_full_tp = full_tp;
    g_speedup = speedup;
    g_fast_alloc = fast_alloc;
    g_full_alloc = full_alloc;
    g_alloc_ratio = alloc_ratio;
    g_pass = speedup >= 2.0 && alloc_ratio <= 0.5;
  }

(* --- output --------------------------------------------------------- *)

let json_hist b h =
  Buffer.add_char b '[';
  List.iteri
    (fun i (lo, hi, c) ->
      if i > 0 then Buffer.add_string b ", ";
      Printf.bprintf b "[%d, %d, %d]" lo hi c)
    (Hist.nonzero h);
  Buffer.add_char b ']'

let json_config b c =
  let q h p = Hist.percentile h p in
  Printf.bprintf b
    {|    {"lock": %S, "arrival": %S, "passages": %d, "measured": %d, "steps": %d,
     "wall_s": %.3f, "throughput_passages_per_s": %.0f, "steps_per_passage": %.1f,
     "minor_words_per_passage": %.1f,
     "latency_steps": {"p50": %d, "p90": %d, "p99": %d, "p999": %d, "max": %d, "mean": %.1f},
     "rmr_per_passage": {"p50": %d, "p99": %d, "max": %d, "mean": %.2f, "hist": |}
    c.co_lock (arrival_name c.co_arrival) c.co_passages c.co_measured c.co_steps c.co_wall
    (float_of_int c.co_passages /. Float.max 1e-9 c.co_wall)
    (float_of_int c.co_steps /. float_of_int (max 1 c.co_passages))
    (c.co_minor_words /. float_of_int (max 1 c.co_passages))
    (q c.co_lat 0.50) (q c.co_lat 0.90) (q c.co_lat 0.99) (q c.co_lat 0.999) (Hist.max c.co_lat)
    (Hist.mean c.co_lat) (q c.co_rmr 0.50) (q c.co_rmr 0.99) (Hist.max c.co_rmr)
    (Hist.mean c.co_rmr);
  json_hist b c.co_rmr;
  Printf.bprintf b {|},
     "latency_hist": |};
  json_hist b c.co_lat;
  Printf.bprintf b {|, "stalls": %d}|} (List.length c.co_stalls)

let statsd_config b c =
  let base = Printf.sprintf "rme.service.%s.%s" c.co_lock (arrival_name c.co_arrival) in
  Metrics.statsd_count b (base ^ ".passages") c.co_passages;
  Metrics.statsd_gauge b
    (base ^ ".throughput_passages_per_s")
    (float_of_int c.co_passages /. Float.max 1e-9 c.co_wall);
  Metrics.statsd_timing b (base ^ ".latency.p50") (Hist.percentile c.co_lat 0.50);
  Metrics.statsd_timing b (base ^ ".latency.p99") (Hist.percentile c.co_lat 0.99);
  Metrics.statsd_timing b (base ^ ".latency.p999") (Hist.percentile c.co_lat 0.999);
  Metrics.statsd_gauge b (base ^ ".rmr.mean") (Hist.mean c.co_rmr);
  Metrics.statsd_gauge b (base ^ ".minor_words_per_passage")
    (c.co_minor_words /. float_of_int (max 1 c.co_passages));
  Metrics.statsd_count b (base ^ ".stalls") (List.length c.co_stalls)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* --- driver --------------------------------------------------------- *)

let service passages locks arrivals clients shards seed gap burst cs_yields warmup_frac smoke out
    statsd no_gate jobs =
  let passages = if smoke then min passages 60_000 else passages in
  let specs =
    List.map
      (fun key ->
        match Rme.Spec.find key with
        | Some s -> s
        | None ->
            Fmt.epr "service: unknown lock %S (known: %s)@." key
              (String.concat ", " (Rme.Spec.keys ()));
            exit 2)
      locks
  in
  let arrivals =
    List.map
      (fun a ->
        match arrival_of_string a with
        | Ok a -> a
        | Error msg ->
            Fmt.epr "service: %s@." msg;
            exit 2)
      arrivals
  in
  let domains = match jobs with Some j -> max 1 j | None -> Rme_check.Pool.default_domains () in
  let shards = match shards with Some s -> max 1 s | None -> domains in
  let configs = List.concat_map (fun s -> List.map (fun a -> (s, a)) arrivals) specs in
  let nconfigs = List.length configs in
  let per_config = (passages + nconfigs - 1) / nconfigs in
  let per_shard = (per_config + shards - 1) / shards in
  let requests = max 1 ((per_shard + clients - 1) / clients) in
  let warmup = int_of_float (warmup_frac *. float_of_int requests) in
  let tasks =
    Array.of_list
      (List.concat_map
         (fun (idx, (spec, arrival)) ->
           List.init shards (fun shard ->
               (spec, arrival, seed + (1009 * idx) + (97 * shard))))
         (List.mapi (fun i c -> (i, c)) configs))
  in
  Fmt.pr "service: %d locks x %d arrivals, %d shards x %d clients x %d requests (%d passages offered, warmup %d/client)@."
    (List.length specs) (List.length arrivals) shards clients requests
    (nconfigs * shards * clients * requests)
    warmup;
  let t0 = Unix.gettimeofday () in
  let results =
    Rme_check.Pool.map ~domains ~tasks (fun ~index:_ ~stop:_ (spec, arrival, seed) ->
        run_shard ~mode:`Fast ~record:false ~trace_ops:false ~spec ~arrival ~clients ~requests
          ~warmup ~gap ~burst ~cs_yields ~seed)
  in
  let wall_total = Unix.gettimeofday () -. t0 in
  let merged =
    List.mapi
      (fun idx (spec, arrival) ->
        let outs = ref [] in
        Array.iteri
          (fun i r ->
            let s, a, _ = tasks.(i) in
            if s == spec && a = arrival then
              match r with Some o -> outs := o :: !outs | None -> ())
          results;
        ignore idx;
        merge_config ~lock:spec.Rme.Spec.key ~arrival (List.rev !outs))
      configs
  in
  let total_passages = List.fold_left (fun acc c -> acc + c.co_passages) 0 merged in
  let stalls = List.concat_map (fun c -> List.map (fun m -> (c, m)) c.co_stalls) merged in
  List.iter
    (fun c ->
      Fmt.pr "%-12s %-8s %8d passages  %7.0f/s  p50=%-6d p99=%-6d p999=%-6d rmr p99=%-4d %s@."
        c.co_lock (arrival_name c.co_arrival) c.co_passages
        (float_of_int c.co_passages /. Float.max 1e-9 c.co_wall)
        (Hist.percentile c.co_lat 0.50) (Hist.percentile c.co_lat 0.99)
        (Hist.percentile c.co_lat 0.999) (Hist.percentile c.co_rmr 0.99)
        (if c.co_stalls = [] then "" else "STALL"))
    merged;
  let gate =
    if no_gate then None
    else begin
      let spec = List.hd specs in
      let gate_requests = max 256 (min requests 4096) in
      Fmt.pr "gate: fast vs instrumented on %s (%d clients x %d requests, single domain)@."
        spec.Rme.Spec.key clients gate_requests;
      let g = run_gate ~spec ~clients ~requests:gate_requests ~burst ~cs_yields ~seed in
      Fmt.pr
        "gate: fast %.0f passages/s vs full %.0f (%.2fx, need >= 2.0); %.1f vs %.1f minor \
         words/passage (%.2fx, need <= 0.5) -> %s@."
        g.g_fast_tp g.g_full_tp g.g_speedup g.g_fast_alloc g.g_full_alloc g.g_alloc_ratio
        (if g.g_pass then "PASS" else "FAIL");
      Some g
    end
  in
  (* BENCH_service.json *)
  let b = Buffer.create 8192 in
  Printf.bprintf b "{\n  \"bench\": \"service\",\n  \"host\": %s,\n" (Metrics.host_json ());
  Printf.bprintf b
    {|  "config": {"passages": %d, "clients": %d, "shards": %d, "domains": %d, "seed": %d,
             "gap": %d, "burst": %d, "cs_yields": %d, "warmup_frac": %g,
             "locks": [%s], "arrivals": [%s]},
|}
    total_passages clients shards domains seed gap burst cs_yields warmup_frac
    (String.concat ", " (List.map (fun (s : Rme.Spec.t) -> Printf.sprintf "%S" s.key) specs))
    (String.concat ", " (List.map (fun a -> Printf.sprintf "%S" (arrival_name a)) arrivals));
  (match gate with
  | None -> Buffer.add_string b "  \"gate\": null,\n"
  | Some g ->
      Printf.bprintf b
        {|  "gate": {"fast_passages_per_s": %.0f, "full_passages_per_s": %.0f, "speedup": %.2f,
           "fast_minor_words_per_passage": %.1f, "full_minor_words_per_passage": %.1f,
           "alloc_ratio": %.3f, "pass": %b},
|}
        g.g_fast_tp g.g_full_tp g.g_speedup g.g_fast_alloc g.g_full_alloc g.g_alloc_ratio g.g_pass);
  Buffer.add_string b "  \"results\": [\n";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string b ",\n";
      json_config b c)
    merged;
  Printf.bprintf b "\n  ],\n  \"totals\": {\"passages\": %d, \"wall_s\": %.3f, \"passages_per_s\": %.0f, \"stalls\": %d}\n}\n"
    total_passages wall_total
    (float_of_int total_passages /. Float.max 1e-9 wall_total)
    (List.length stalls);
  write_file out (Buffer.contents b);
  Fmt.pr "total: %d passages in %.1fs (%.0f passages/s) -> %s@." total_passages wall_total
    (float_of_int total_passages /. Float.max 1e-9 wall_total)
    out;
  (match statsd with
  | None -> ()
  | Some path ->
      let sb = Buffer.create 2048 in
      List.iter (statsd_config sb) merged;
      Metrics.statsd_count sb "rme.service.total.passages" total_passages;
      Metrics.statsd_gauge sb "rme.service.total.passages_per_s"
        (float_of_int total_passages /. Float.max 1e-9 wall_total);
      write_file path (Buffer.contents sb);
      Fmt.pr "statsd lines -> %s@." path);
  List.iter
    (fun (c, msg) ->
      Fmt.epr "STALL %s/%s: %s@." c.co_lock (arrival_name c.co_arrival) msg)
    stalls;
  let gate_failed = match gate with Some g -> not g.g_pass | None -> false in
  if stalls <> [] then 1 else if gate_failed then 1 else 0

let () =
  let passages =
    Arg.(
      value & opt int 1_200_000
      & info [ "passages" ] ~docv:"N" ~doc:"Total passages offered across all configurations.")
  in
  let locks =
    Arg.(
      value
      & opt (list string) [ "wr"; "ramaraju"; "ba-jjj"; "dm-jjj" ]
      & info [ "locks" ] ~docv:"KEYS" ~doc:"Comma-separated registry lock keys to serve.")
  in
  let arrivals =
    Arg.(
      value
      & opt (list string) [ "poisson"; "bursty" ]
      & info [ "arrivals" ] ~docv:"PROCS" ~doc:"Arrival processes: poisson and/or bursty.")
  in
  let clients =
    Arg.(value & opt int 8 & info [ "clients" ] ~docv:"N" ~doc:"Client processes per engine.")
  in
  let shards =
    Arg.(
      value & opt (some int) None
      & info [ "shards" ] ~docv:"N"
          ~doc:"Engine shards per configuration (default: the domain count).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Base seed.") in
  let gap =
    Arg.(
      value & opt int 1_600
      & info [ "gap" ] ~docv:"STEPS"
          ~doc:
            "Mean inter-arrival gap per client, in engine steps.  The default keeps the \
             heaviest registry lock below saturation (~110 steps/passage against one arrival \
             per 200 steps with 8 clients), so the latency quantiles measure queueing, not an \
             unbounded backlog.")
  in
  let burst =
    Arg.(value & opt int 8 & info [ "burst" ] ~docv:"K" ~doc:"Arrivals per burst (bursty).")
  in
  let cs_yields =
    Arg.(
      value & opt int 2
      & info [ "cs-yields" ] ~docv:"K" ~doc:"Critical-section length in scheduling points.")
  in
  let warmup =
    Arg.(
      value & opt float 0.1
      & info [ "warmup" ] ~docv:"FRAC"
          ~doc:"Fraction of each client's requests excluded from the histograms.")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ] ~doc:"Cap the campaign at 60k passages (CI smoke profile).")
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_service.json"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"JSON report path.")
  in
  let statsd =
    Arg.(
      value
      & opt (some string) None
      & info [ "statsd" ] ~docv:"FILE" ~doc:"Also export StatsD lines to $(docv).")
  in
  let no_gate =
    Arg.(
      value & flag
      & info [ "no-gate" ] ~doc:"Skip the fast-vs-instrumented performance gate.")
  in
  let jobs =
    Arg.(
      value & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N" ~doc:"OCaml domains (default: RME_DOMAINS or auto).")
  in
  let cmd =
    Cmd.v
      (Cmd.info "service"
         ~doc:
           "Open-loop lock-service benchmark over the registry: throughput, latency quantiles, \
            RMR histograms, allocation rates; BENCH_service.json out.")
      Term.(
        const service $ passages $ locks $ arrivals $ clients $ shards $ seed $ gap $ burst
        $ cs_yields $ warmup $ smoke $ out $ statsd $ no_gate $ jobs)
  in
  exit (Cmd.eval' cmd)
