(* Command-line driver: run any registered lock under a workload, list the
   registry, or print an event trace.  The bench harness (bench/main.exe)
   regenerates the paper's tables; this tool is for interactive poking. *)

open Cmdliner
open Rme_sim

let lock_arg =
  let doc =
    Printf.sprintf "Lock to drive; one of: %s." (String.concat ", " (Rme.Spec.keys ()))
  in
  Arg.(value & opt string "ba-jjj" & info [ "l"; "lock" ] ~docv:"LOCK" ~doc)

let n_arg = Arg.(value & opt int 8 & info [ "n" ] ~docv:"N" ~doc:"Number of processes.")

let requests_arg =
  Arg.(value & opt int 8 & info [ "r"; "requests" ] ~docv:"R" ~doc:"Requests per process.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Scheduler seed.")

let model_arg =
  let model_conv =
    Arg.conv
      ( (fun s ->
          match Memory.model_of_string s with
          | Some m -> Ok m
          | None -> Error (`Msg "expected cc or dsm")),
        Memory.pp_model )
  in
  Arg.(value & opt model_conv Memory.CC & info [ "m"; "model" ] ~docv:"MODEL" ~doc:"Memory model: cc or dsm.")

let scenario_arg =
  let scenario_conv =
    Arg.conv
      ( (fun s ->
          match Rme.Workload.scenario_of_string s with
          | Some sc -> Ok sc
          | None -> Error (`Msg ("expected " ^ Rme.Workload.scenario_grammar))),
        Rme.Workload.pp_scenario )
  in
  Arg.(
    value
    & opt scenario_conv Rme.Workload.No_failures
    & info [ "s"; "scenario" ] ~docv:"SCENARIO"
        ~doc:
          "Failure scenario: none, fas:F (F unsafe FAS-gap crashes), storm:K (K random \
           crashes), batch:SIZE, impatient:T[:RETRIES[:BACKOFF]] (abort every waiter after T \
           steps, RETRIES times, timeout scaled by BACKOFF after each abort).")

let events_arg =
  Arg.(value & flag & info [ "events" ] ~doc:"Print the recorded event history.")

let timeline_arg =
  Arg.(value & flag & info [ "timeline" ] ~doc:"Print an ASCII execution timeline.")

let run_cmd =
  let run lock n requests seed model scenario events timeline =
    let cfg =
      {
        Rme.Workload.default_cfg with
        n;
        requests;
        seed;
        model;
        scenario;
        record = events || timeline;
        cs_yields = 4;
      }
    in
    let spec = Rme.Spec.find_exn lock in
    let res = Rme.Workload.run spec cfg in
    if events then List.iter (fun ev -> Fmt.pr "%a@." Event.pp ev) res.Engine.events;
    if timeline then Fmt.pr "%a@." (Rme_check.Timeline.pp ?width:None) res;
    Fmt.pr "%a@." Engine.pp_summary res;
    let m = Rme.Workload.measure res in
    Fmt.pr "max_rmr/passage=%.0f avg_rmr/passage=%.2f avg_rmr/super=%.2f max_level=%d@."
      m.Rme.Workload.max_rmr m.avg_rmr m.avg_super_rmr m.max_level;
    if not m.Rme.Workload.satisfied then exit 2
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a lock under a workload and print statistics.")
    Term.(
      const run $ lock_arg $ n_arg $ requests_arg $ seed_arg $ model_arg $ scenario_arg
      $ events_arg $ timeline_arg)

let list_cmd =
  let list () =
    Rme.Report.table
      ~header:[ "key"; "recoverability"; "failure-free"; "F failures"; "unbounded"; "description" ]
      ~rows:
        (List.map
           (fun (s : Rme.Spec.t) ->
             [
               s.key;
               (match s.expectation.recoverability with
               | `None -> "none"
               | `Weak -> "weak"
               | `Strong -> "strong");
               s.expectation.failure_free;
               s.expectation.limited_failures;
               s.expectation.arbitrary_failures;
               s.descr;
             ])
           Rme.Spec.all)
  in
  Cmd.v (Cmd.info "list" ~doc:"List the lock registry.") Term.(const list $ const ())

let check_cmd =
  let check lock n requests seed model scenario =
    let cfg =
      {
        Rme.Workload.default_cfg with
        n;
        requests;
        seed;
        model;
        scenario;
        record = true;
        cs_yields = 4;
      }
    in
    let spec = Rme.Spec.find_exn lock in
    let res = Rme.Workload.run spec cfg in
    let report name = function
      | None -> Fmt.pr "%-22s ok@." name
      | Some msg ->
          Fmt.pr "%-22s VIOLATION: %s@." name msg;
          exit 2
    in
    report "mutual-exclusion" (Rme.Check.Props.mutual_exclusion res);
    report "starvation-freedom" (Rme.Check.Props.starvation_freedom res ~requests)
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Run a lock and check ME + SF on the recorded history.")
    Term.(const check $ lock_arg $ n_arg $ requests_arg $ seed_arg $ model_arg $ scenario_arg)

let sweep_cmd =
  let over_arg =
    Arg.(
      value
      & opt (enum [ ("n", `N); ("f", `F) ]) `F
      & info [ "over" ] ~docv:"AXIS" ~doc:"Sweep axis: n (processes) or f (unsafe failures).")
  in
  let values_arg =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4; 8; 16; 32; 64 ]
      & info [ "values" ] ~docv:"V1,V2,..." ~doc:"Axis values.")
  in
  let csv_arg =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc:"Also write a CSV file.")
  in
  let svg_arg =
    Arg.(value & opt (some string) None & info [ "svg" ] ~docv:"FILE" ~doc:"Also write an SVG chart.")
  in
  let sweep lock n requests seed model over values csv svg =
    let spec = Rme.Spec.find_exn lock in
    let cfg_of v =
      let base =
        { Rme.Workload.default_cfg with n; requests; seed; model; cs_yields = 6 }
      in
      match over with
      | `N -> { base with Rme.Workload.n = v }
      | `F ->
          {
            base with
            Rme.Workload.scenario =
              (if v = 0 then Rme.Workload.No_failures
               else Rme.Workload.Fas_storm { f = v; rate = 0.4 });
          }
    in
    let results = Rme.Workload.sweep spec ~over:cfg_of values in
    let points =
      List.map
        (fun (v, m) -> (float_of_int v, m.Rme.Workload.max_rmr))
        results
    in
    Rme.Report.series
      ~title:(Printf.sprintf "%s: worst passage RMRs" lock)
      ~xlabel:(match over with `N -> "n" | `F -> "F")
      ~ylabel:"max RMR" points;
    Fmt.pr "@.fitted growth exponent: %.2f (%a)@." (Rme.Report.fit_exponent points)
      Rme.Report.pp_growth
      (Rme.Report.classify points);
    (match csv with
    | None -> ()
    | Some path ->
        Rme.Report.write_csv ~path
          ~header:[ (match over with `N -> "n" | `F -> "f"); "max_rmr"; "avg_rmr"; "max_level" ]
          ~rows:
            (List.map
               (fun (v, (m : Rme.Workload.measurement)) ->
                 [
                   string_of_int v;
                   Printf.sprintf "%.1f" m.max_rmr;
                   Printf.sprintf "%.2f" m.avg_rmr;
                   string_of_int m.max_level;
                 ])
               results);
        Fmt.pr "(csv: %s)@." path);
    match svg with
    | None -> ()
    | Some path ->
        Rme.Svg_chart.write ~path ~log_x:true
          ~title:(Printf.sprintf "%s: worst passage RMRs" lock)
          ~xlabel:(match over with `N -> "n" | `F -> "F")
          ~ylabel:"max RMR"
          [ { Rme.Svg_chart.label = lock; points } ];
        Fmt.pr "(svg: %s)@." path
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Sweep a parameter and print the RMR growth curve.")
    Term.(
      const sweep $ lock_arg $ n_arg $ requests_arg $ seed_arg $ model_arg $ over_arg $ values_arg
      $ csv_arg $ svg_arg)

let () =
  let info = Cmd.info "rme" ~version:Rme.version ~doc:"Adaptive recoverable mutual exclusion (PODC 2020) reproduction." in
  exit (Cmd.eval (Cmd.group info [ run_cmd; list_cmd; check_cmd; sweep_cmd ]))
