(* Randomized soak campaign: hammer every crash-safe lock in the registry
   with random schedules, crash storms and memory models, and run the full
   checker battery over the recorded histories.  Exit status 0 iff no
   violation was found.

     dune exec bin/soak.exe -- --runs 200 --seed 0
     dune exec bin/soak.exe -- --lock ba-jjj --runs 1000 *)

open Cmdliner
open Rme_sim

type failure = { lock : string; seed : int; what : string }

let run_one ~spec ~seed =
  let rng = Random.State.make [| seed; 0x50a6 |] in
  let n = 2 + Random.State.int rng 7 in
  let requests = 2 + Random.State.int rng 5 in
  let model = if Random.State.bool rng then Memory.CC else Memory.DSM in
  let scenario =
    match Random.State.int rng 4 with
    | 0 -> Rme.Workload.No_failures
    | 1 -> Rme.Workload.Fas_storm { f = 1 + Random.State.int rng 8; rate = 0.4 }
    | 2 -> Rme.Workload.Random_storm { crashes = 1 + Random.State.int rng n; rate = 0.008 }
    | _ ->
        Rme.Workload.Batch
          { size = 1 + Random.State.int rng n; at_step = 100; repeat = 1; gap = 0 }
  in
  let cfg =
    {
      Rme.Workload.n;
      requests;
      model;
      seed;
      scenario;
      record = true;
      cs_yields = Random.State.int rng 6;
      ncs_yields = Random.State.int rng 3;
      max_steps = 3_000_000;
    }
  in
  let res = Rme.Workload.run spec cfg in
  let weak_lock_ids =
    (* By construction every registered weakly recoverable lock registers
       itself first, so its lock id is 0. *)
    if spec.Rme.Spec.expectation.Rme.Spec.recoverability = `Weak then [ 0 ] else []
  in
  let problems = Rme.Check.Props.check_battery res ~requests ~weak_lock_ids in
  (problems, Fmt.str "n=%d req=%d %a %a" n requests Memory.pp_model model
               Rme.Workload.pp_scenario scenario)

let repro key seed =
  let spec = Rme.Spec.find_exn key in
  let problems, descr = run_one ~spec ~seed in
  Fmt.pr "repro %s seed=%d: %s@." key seed descr;
  (* Re-run with the same derived configuration, printing the timeline. *)
  let rng = Random.State.make [| seed; 0x50a6 |] in
  let n = 2 + Random.State.int rng 7 in
  let requests = 2 + Random.State.int rng 5 in
  let model = if Random.State.bool rng then Memory.CC else Memory.DSM in
  let scenario =
    match Random.State.int rng 4 with
    | 0 -> Rme.Workload.No_failures
    | 1 -> Rme.Workload.Fas_storm { f = 1 + Random.State.int rng 8; rate = 0.4 }
    | 2 -> Rme.Workload.Random_storm { crashes = 1 + Random.State.int rng n; rate = 0.008 }
    | _ ->
        Rme.Workload.Batch
          { size = 1 + Random.State.int rng n; at_step = 100; repeat = 1; gap = 0 }
  in
  let cfg =
    {
      Rme.Workload.n;
      requests;
      model;
      seed;
      scenario;
      record = true;
      cs_yields = Random.State.int rng 6;
      ncs_yields = Random.State.int rng 3;
      max_steps = 3_000_000;
    }
  in
  let res = Rme.Workload.run spec cfg in
  Fmt.pr "%a@." (Rme_check.Timeline.pp ?width:None) res;
  List.iter (Fmt.pr "VIOLATION: %s@.") problems;
  if problems = [] then 0 else 1

let soak lock runs seed_base verbose jobs =
  let specs =
    match lock with
    | Some key -> [ Rme.Spec.find_exn key ]
    | None -> List.filter (fun (s : Rme.Spec.t) -> s.crash_safe) Rme.Spec.all
  in
  (* One task per (lock, seed); sharded across domains with --jobs > 1.
     run_one is domain-safe (every run builds its own engine, memory and
     seeded RNGs), and results are reported in task order, so the output
     and the exit status are independent of the domain count. *)
  let tasks =
    Array.of_list
      (List.concat_map
         (fun (spec : Rme.Spec.t) -> List.init runs (fun i -> (spec, seed_base + i)))
         specs)
  in
  let results =
    Rme_check.Pool.map ~domains:(max 1 jobs) ~tasks (fun ~index:_ ~stop:_ (spec, seed) ->
        run_one ~spec ~seed)
  in
  let failures = ref [] in
  Array.iteri
    (fun i result ->
      let spec, seed = tasks.(i) in
      match result with
      | None -> ()
      | Some (problems, descr) ->
          if verbose then
            Fmt.pr "%-16s seed=%-6d %s %s@." spec.Rme.Spec.key seed descr
              (if problems = [] then "ok" else "FAIL");
          List.iter
            (fun what -> failures := { lock = spec.Rme.Spec.key; seed; what } :: !failures)
            problems;
          if seed = seed_base + runs - 1 then Fmt.pr "%-16s %d runs done@." spec.Rme.Spec.key runs)
    results;
  let failures = List.rev !failures in
  let total = Array.length tasks in
  if failures = [] then begin
    Fmt.pr "@.soak clean: %d runs, 0 violations@." total;
    0
  end
  else begin
    Fmt.pr "@.%d VIOLATIONS in %d runs:@." (List.length failures) total;
    List.iter (fun f -> Fmt.pr "  %s seed=%d: %s@." f.lock f.seed f.what) failures;
    1
  end

let () =
  let lock =
    Arg.(value & opt (some string) None & info [ "l"; "lock" ] ~docv:"LOCK" ~doc:"Only this lock.")
  in
  let runs = Arg.(value & opt int 50 & info [ "runs" ] ~docv:"N" ~doc:"Runs per lock.") in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~docv:"S" ~doc:"Base seed.") in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Per-run output.") in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Shard the campaign over $(docv) OCaml domains (1 = sequential).")
  in
  let repro_arg =
    Arg.(
      value
      & opt (some (pair ~sep:':' string int)) None
      & info [ "repro" ] ~docv:"LOCK:SEED"
          ~doc:"Reproduce one soak case verbosely (prints the timeline) and exit.")
  in
  let main lock runs seed verbose jobs repro_case =
    match repro_case with Some (key, s) -> repro key s | None -> soak lock runs seed verbose jobs
  in
  let cmd =
    Cmd.v
      (Cmd.info "soak" ~doc:"Randomized soak/fuzz campaign over the lock registry.")
      Term.(const main $ lock $ runs $ seed $ verbose $ jobs $ repro_arg)
  in
  exit (Cmd.eval' cmd)
