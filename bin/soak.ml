(* Randomized soak campaign: hammer every crash-safe lock in the registry
   with random schedules, crash storms and memory models, and run the full
   checker battery over the recorded histories.  Exit status 0 iff no
   violation was found.

     dune exec bin/soak.exe -- --runs 200 --seed 0
     dune exec bin/soak.exe -- --lock ba-jjj --runs 1000 *)

open Cmdliner
open Rme_sim

type failure = { lock : string; seed : int; what : string }

let run_one ~spec ~seed =
  let rng = Random.State.make [| seed; 0x50a6 |] in
  let n = 2 + Random.State.int rng 7 in
  let requests = 2 + Random.State.int rng 5 in
  let model = if Random.State.bool rng then Memory.CC else Memory.DSM in
  let scenario =
    match Random.State.int rng 4 with
    | 0 -> Rme.Workload.No_failures
    | 1 -> Rme.Workload.Fas_storm { f = 1 + Random.State.int rng 8; rate = 0.4 }
    | 2 -> Rme.Workload.Random_storm { crashes = 1 + Random.State.int rng n; rate = 0.008 }
    | _ ->
        Rme.Workload.Batch
          { size = 1 + Random.State.int rng n; at_step = 100; repeat = 1; gap = 0 }
  in
  let cfg =
    {
      Rme.Workload.n;
      requests;
      model;
      seed;
      scenario;
      record = true;
      cs_yields = Random.State.int rng 6;
      ncs_yields = Random.State.int rng 3;
      max_steps = 3_000_000;
    }
  in
  let res = Rme.Workload.run spec cfg in
  let weak_lock_ids =
    (* By construction every registered weakly recoverable lock registers
       itself first, so its lock id is 0. *)
    if spec.Rme.Spec.expectation.Rme.Spec.recoverability = `Weak then [ 0 ] else []
  in
  let problems = Rme.Check.Props.check_battery res ~requests ~weak_lock_ids in
  (problems, Fmt.str "n=%d req=%d %a %a" n requests Memory.pp_model model
               Rme.Workload.pp_scenario scenario)

let repro key seed =
  let spec = Rme.Spec.find_exn key in
  let problems, descr = run_one ~spec ~seed in
  Fmt.pr "repro %s seed=%d: %s@." key seed descr;
  (* Re-run with the same derived configuration, printing the timeline. *)
  let rng = Random.State.make [| seed; 0x50a6 |] in
  let n = 2 + Random.State.int rng 7 in
  let requests = 2 + Random.State.int rng 5 in
  let model = if Random.State.bool rng then Memory.CC else Memory.DSM in
  let scenario =
    match Random.State.int rng 4 with
    | 0 -> Rme.Workload.No_failures
    | 1 -> Rme.Workload.Fas_storm { f = 1 + Random.State.int rng 8; rate = 0.4 }
    | 2 -> Rme.Workload.Random_storm { crashes = 1 + Random.State.int rng n; rate = 0.008 }
    | _ ->
        Rme.Workload.Batch
          { size = 1 + Random.State.int rng n; at_step = 100; repeat = 1; gap = 0 }
  in
  let cfg =
    {
      Rme.Workload.n;
      requests;
      model;
      seed;
      scenario;
      record = true;
      cs_yields = Random.State.int rng 6;
      ncs_yields = Random.State.int rng 3;
      max_steps = 3_000_000;
    }
  in
  let res = Rme.Workload.run spec cfg in
  Fmt.pr "%a@." (Rme_check.Timeline.pp ?width:None) res;
  List.iter (Fmt.pr "VIOLATION: %s@.") problems;
  if problems = [] then 0 else 1

let soak lock runs seed_base verbose =
  let specs =
    match lock with
    | Some key -> [ Rme.Spec.find_exn key ]
    | None -> List.filter (fun (s : Rme.Spec.t) -> s.crash_safe) Rme.Spec.all
  in
  let failures = ref [] in
  let total = ref 0 in
  List.iter
    (fun (spec : Rme.Spec.t) ->
      for i = 0 to runs - 1 do
        incr total;
        let seed = seed_base + i in
        let problems, descr = run_one ~spec ~seed in
        if verbose then Fmt.pr "%-16s seed=%-6d %s %s@." spec.key seed descr
            (if problems = [] then "ok" else "FAIL");
        List.iter
          (fun what -> failures := { lock = spec.key; seed; what } :: !failures)
          problems
      done;
      Fmt.pr "%-16s %d runs done@." spec.Rme.Spec.key runs)
    specs;
  if !failures = [] then begin
    Fmt.pr "@.soak clean: %d runs, 0 violations@." !total;
    0
  end
  else begin
    Fmt.pr "@.%d VIOLATIONS in %d runs:@." (List.length !failures) !total;
    List.iter (fun f -> Fmt.pr "  %s seed=%d: %s@." f.lock f.seed f.what) !failures;
    1
  end

let () =
  let lock =
    Arg.(value & opt (some string) None & info [ "l"; "lock" ] ~docv:"LOCK" ~doc:"Only this lock.")
  in
  let runs = Arg.(value & opt int 50 & info [ "runs" ] ~docv:"N" ~doc:"Runs per lock.") in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~docv:"S" ~doc:"Base seed.") in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Per-run output.") in
  let repro_arg =
    Arg.(
      value
      & opt (some (pair ~sep:':' string int)) None
      & info [ "repro" ] ~docv:"LOCK:SEED"
          ~doc:"Reproduce one soak case verbosely (prints the timeline) and exit.")
  in
  let main lock runs seed verbose repro_case =
    match repro_case with Some (key, s) -> repro key s | None -> soak lock runs seed verbose
  in
  let cmd =
    Cmd.v
      (Cmd.info "soak" ~doc:"Randomized soak/fuzz campaign over the lock registry.")
      Term.(const main $ lock $ runs $ seed $ verbose $ repro_arg)
  in
  exit (Cmd.eval' cmd)
