(* Randomized soak campaign: hammer every crash-safe lock in the registry
   with random schedules, crash storms and memory models, and run the full
   checker battery over the recorded histories.  Exit status 0 iff no
   violation was found.

     dune exec bin/soak.exe -- --runs 200 --seed 0
     dune exec bin/soak.exe -- --lock ba-jjj --runs 1000
     dune exec bin/soak.exe -- --replay 1234 --lock wr     # full report
     dune exec bin/soak.exe -- --adversary all --runs 50   # chaos campaign *)

open Cmdliner
open Rme_sim
module Chaos = Rme_check.Chaos

type failure = { lock : string; seed : int; what : string }

(* The whole run configuration is a pure function of the seed, so any
   soak case replays exactly from its seed alone. *)
let derive_cfg ~seed =
  let rng = Random.State.make [| seed; 0x50a6 |] in
  let n = 2 + Random.State.int rng 7 in
  let requests = 2 + Random.State.int rng 5 in
  let model = if Random.State.bool rng then Memory.CC else Memory.DSM in
  let scenario =
    match Random.State.int rng 5 with
    | 0 -> Rme.Workload.No_failures
    | 1 -> Rme.Workload.Fas_storm { f = 1 + Random.State.int rng 8; rate = 0.4 }
    | 2 -> Rme.Workload.Random_storm { crashes = 1 + Random.State.int rng n; rate = 0.008 }
    | 3 ->
        (* Batch phase and cadence vary per seed so the batches land in
           different phases of the run (startup, steady state, drain). *)
        Rme.Workload.Batch
          {
            size = 1 + Random.State.int rng n;
            at_step = 50 + Random.State.int rng 1950;
            repeat = 1 + Random.State.int rng 3;
            gap = 200 + Random.State.int rng 1800;
          }
    | _ ->
        Rme.Workload.Impatient
          {
            timeout_steps = 20 + Random.State.int rng 180;
            retries = 1 + Random.State.int rng 4;
            backoff = 1.0 +. Random.State.float rng 1.5;
          }
  in
  {
    Rme.Workload.n;
    requests;
    model;
    seed;
    scenario;
    record = true;
    cs_yields = Random.State.int rng 6;
    ncs_yields = Random.State.int rng 3;
    max_steps = 3_000_000;
  }

let weak_lock_ids (spec : Rme.Spec.t) =
  (* By construction every registered weakly recoverable lock registers
     itself first, so its lock id is 0. *)
  if spec.Rme.Spec.expectation.Rme.Spec.recoverability = `Weak then [ 0 ] else []

let describe cfg =
  Fmt.str "n=%d req=%d %a %a" cfg.Rme.Workload.n cfg.Rme.Workload.requests Memory.pp_model
    cfg.Rme.Workload.model Rme.Workload.pp_scenario cfg.Rme.Workload.scenario

let abort_expect (spec : Rme.Spec.t) =
  if spec.Rme.Spec.abortable then Some Rme.Check.Props.default_abort_expect else None

let run_one ~spec ~scenario ~seed =
  let cfg = derive_cfg ~seed in
  let cfg = match scenario with Some s -> { cfg with Rme.Workload.scenario = s } | None -> cfg in
  let res = Rme.Workload.run spec cfg in
  let problems =
    Rme.Check.Props.check_battery
      ?abort:(abort_expect spec)
      res ~requests:cfg.Rme.Workload.requests ~weak_lock_ids:(weak_lock_ids spec)
  in
  (problems, describe cfg, res.Engine.steps)

let selected_specs lock =
  match lock with
  | Some key -> [ Rme.Spec.find_exn key ]
  | None -> List.filter (fun (s : Rme.Spec.t) -> s.crash_safe) Rme.Spec.all

(* --replay: deterministically re-run one recorded case and print the full
   battery report, engine summary and history timeline. *)
let pp_abort_stat ppf (a : Engine.abort_stat) =
  Fmt.pf ppf "p%d signal@%d op#%d %s own=%d rmr=%d -> %a" a.Engine.ab_pid
    a.Engine.ab_signal_step a.Engine.ab_op_index
    (if a.Engine.ab_resolved_step < 0 then "pending"
     else Printf.sprintf "resolved@%d" a.Engine.ab_resolved_step)
    a.Engine.ab_own_steps a.Engine.ab_rmr Engine.pp_abort_result a.Engine.ab_result

let replay lock scenario seed =
  let failed = ref false in
  List.iter
    (fun (spec : Rme.Spec.t) ->
      let cfg = derive_cfg ~seed in
      let cfg =
        match scenario with Some s -> { cfg with Rme.Workload.scenario = s } | None -> cfg
      in
      let res = Rme.Workload.run spec cfg in
      let problems =
        Rme.Check.Props.check_battery
          ?abort:(abort_expect spec)
          res ~requests:cfg.Rme.Workload.requests ~weak_lock_ids:(weak_lock_ids spec)
      in
      Fmt.pr "=== %s seed=%d: %s@.%a@.%a@." spec.Rme.Spec.key seed (describe cfg)
        Engine.pp_summary res
        (Rme_check.Timeline.pp ?width:None)
        res;
      (* The abort decision vector of the run: every delivered signal and
         how it resolved, in delivery order. *)
      (match res.Engine.aborts with
      | [] -> ()
      | aborts ->
          Fmt.pr "abort decisions (%d):@." (List.length aborts);
          List.iter (fun a -> Fmt.pr "  %a@." pp_abort_stat a) aborts);
      if problems = [] then Fmt.pr "battery clean@."
      else begin
        failed := true;
        List.iter (Fmt.pr "VIOLATION: %s@.") problems
      end)
    (selected_specs lock);
  if !failed then 1 else 0

let soak lock scenario runs seed_base verbose jobs =
  let specs = selected_specs lock in
  (* One task per (lock, seed); sharded across domains with --jobs > 1.
     run_one is domain-safe (every run builds its own engine, memory and
     seeded RNGs), and results are reported in task order, so the output
     and the exit status are independent of the domain count. *)
  let tasks =
    Array.of_list
      (List.concat_map
         (fun (spec : Rme.Spec.t) -> List.init runs (fun i -> (spec, seed_base + i)))
         specs)
  in
  let results =
    Rme_check.Pool.map ~domains:(max 1 jobs) ~tasks (fun ~index:_ ~stop:_ (spec, seed) ->
        run_one ~spec ~scenario ~seed)
  in
  let failures = ref [] in
  let engine_runs = ref 0 in
  let engine_steps = ref 0 in
  Array.iteri
    (fun i result ->
      let spec, seed = tasks.(i) in
      match result with
      | None -> ()
      | Some (problems, descr, steps) ->
          incr engine_runs;
          engine_steps := !engine_steps + steps;
          if verbose then
            Fmt.pr "%-16s seed=%-6d %s %s@." spec.Rme.Spec.key seed descr
              (if problems = [] then "ok" else "FAIL");
          List.iter
            (fun what -> failures := { lock = spec.Rme.Spec.key; seed; what } :: !failures)
            problems;
          if seed = seed_base + runs - 1 then Fmt.pr "%-16s %d runs done@." spec.Rme.Spec.key runs)
    results;
  let failures = List.rev !failures in
  let total = Array.length tasks in
  if failures = [] then begin
    Fmt.pr "@.soak clean: %d runs, 0 violations (engine: %d runs, %d steps)@." total !engine_runs
      !engine_steps;
    0
  end
  else begin
    Fmt.pr "@.%d VIOLATIONS in %d runs (engine: %d runs, %d steps):@." (List.length failures)
      total !engine_runs !engine_steps;
    List.iter
      (fun f ->
        Fmt.pr "  %s seed=%d: %s@.    (replay: soak --replay %d --lock %s)@." f.lock f.seed
          f.what f.seed f.lock)
      failures;
    1
  end

(* --adversary: seeded chaos campaign with the adaptive adversaries; on a
   violation the campaign replays it against a fixed at-op crash plan and
   shrinks the schedule witness (see Rme_check.Chaos). *)
let adversarial lock adv runs seed_base jobs =
  let adversaries =
    if String.lowercase_ascii adv = "all" then Chaos.standard_adversaries
    else
      match Chaos.adversary_of_string adv with
      | Ok a -> [ a ]
      | Error msg ->
          Fmt.epr "soak: %s@." msg;
          exit 2
  in
  let cfg = Chaos.default_cfg in
  let cases =
    List.map
      (fun (spec : Rme.Spec.t) ->
        {
          Chaos.case_name = spec.Rme.Spec.key;
          case_make = spec.Rme.Spec.make;
          case_weak = spec.Rme.Spec.expectation.Rme.Spec.recoverability = `Weak;
          case_ff_bound = Option.map (fun f -> f cfg.Chaos.n) spec.Rme.Spec.ff_bound;
          case_abortable = spec.Rme.Spec.abortable;
        })
      (selected_specs lock)
  in
  let outcome =
    Chaos.campaign ~cfg ~jobs:(max 1 jobs) ~adversaries ~runs ~seed_base cases
  in
  Fmt.pr "chaos campaign: %d runs, %d crashes + %d aborts injected, %d violations@."
    outcome.Chaos.runs outcome.Chaos.crashes outcome.Chaos.aborts
    (List.length outcome.Chaos.violations);
  List.iter (fun v -> Fmt.pr "%a@." Chaos.pp_violation v) outcome.Chaos.violations;
  if outcome.Chaos.violations = [] then 0 else 1

let () =
  let lock =
    Arg.(value & opt (some string) None & info [ "l"; "lock" ] ~docv:"LOCK" ~doc:"Only this lock.")
  in
  let runs = Arg.(value & opt int 50 & info [ "runs" ] ~docv:"N" ~doc:"Runs per lock.") in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~docv:"S" ~doc:"Base seed.") in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Per-run output.") in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Shard the campaign over $(docv) OCaml domains (1 = sequential).")
  in
  let repro_arg =
    Arg.(
      value
      & opt (some (pair ~sep:':' string int)) None
      & info [ "repro" ] ~docv:"LOCK:SEED"
          ~doc:"Shorthand for --replay SEED --lock LOCK (kept for muscle memory).")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "replay" ] ~docv:"SEED"
          ~doc:
            "Deterministically re-run the soak case of $(docv) (restrict with --lock) and \
             print the full battery report, engine summary and history timeline.")
  in
  let adversary_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "adversary" ] ~docv:"ADV"
          ~doc:
            "Run an adaptive chaos campaign instead of the oblivious soak: \
             holder|window|offender|storm|impatient-storm|all.  Violations are replayed \
             against a deterministic at-op crash plan and shrunk to a minimal schedule \
             witness.")
  in
  let scenario_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ] ~docv:"SCENARIO"
          ~doc:
            "Force every soak/replay run to this failure scenario instead of the \
             seed-derived one.  Grammar: none | fas:F | storm:K | batch:SIZE | \
             impatient:T[:RETRIES[:BACKOFF]].")
  in
  let main lock scenario_str runs seed verbose jobs repro_case replay_seed adversary =
    let scenario =
      match scenario_str with
      | None -> None
      | Some str -> (
          match Rme.Workload.scenario_of_string str with
          | Some sc -> Some sc
          | None ->
              Fmt.epr "soak: invalid scenario %S (valid: %s)@." str
                Rme.Workload.scenario_grammar;
              exit 2)
    in
    match (repro_case, replay_seed, adversary) with
    | Some (key, s), _, _ -> replay (Some key) scenario s
    | None, Some s, _ -> replay lock scenario s
    | None, None, Some adv -> adversarial lock adv runs seed jobs
    | None, None, None -> soak lock scenario runs seed verbose jobs
  in
  let cmd =
    Cmd.v
      (Cmd.info "soak" ~doc:"Randomized soak/fuzz campaign over the lock registry.")
      Term.(
        const main $ lock $ scenario_arg $ runs $ seed $ verbose $ jobs $ repro_arg $ replay_arg
        $ adversary_arg)
  in
  exit (Cmd.eval' cmd)
